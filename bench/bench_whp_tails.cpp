// E7 (Table 3): the "with high probability" claims, empirically.
//
// For fixed (n, C) we run tens of thousands of trials and report the round
// distribution's quantiles against multiples of the constant-free bound.
// A w.h.p.-O(B) algorithm should show quantiles that grow by additive
// constants (not multiplicatively) as the quantile approaches 1 - 1/n, and
// zero runs anywhere near the engine's round limit.
#include <iostream>
#include <vector>

#include "baselines/baselines.h"
#include "core/general.h"
#include "core/two_active.h"
#include "harness/runner.h"
#include "harness/stats.h"
#include "harness/table.h"

int main() {
  using namespace crmc;

  constexpr int kTrials = 30000;
  std::cout << "# E7 / Table 3 — tail behaviour over " << kTrials
            << " trials (completion rounds)\n\n";

  harness::Table table({"algorithm", "n", "C", "p50", "p90", "p99", "p99.9",
                        "max", "bound", "max/bound"});

  auto add_row = [&](const char* name, const sim::ProtocolFactory& factory,
                     std::int32_t num_active, std::int64_t n,
                     std::int32_t c, double bound) {
    harness::TrialSpec spec;
    spec.population = n;
    spec.num_active = num_active;
    spec.channels = c;
    spec.stop_when_solved = false;
    const harness::TrialSetResult r =
        harness::RunTrials(spec, factory, kTrials, true);
    std::vector<std::int64_t> rounds;
    rounds.reserve(r.runs.size());
    for (const auto& run : r.runs) rounds.push_back(run.rounds_executed);
    table.Row().Cells(name, n, c, harness::Quantile(rounds, 0.5),
                      harness::Quantile(rounds, 0.9),
                      harness::Quantile(rounds, 0.99),
                      harness::Quantile(rounds, 0.999),
                      harness::Summarize(rounds).max, bound,
                      static_cast<double>(harness::Summarize(rounds).max) /
                          bound);
  };

  for (const std::int32_t c : {16, 256}) {
    const std::int64_t n = std::int64_t{1} << 16;
    add_row("two_active", core::MakeTwoActive(), 2, n, c,
            baselines::TwoActiveBoundRounds(static_cast<double>(n),
                                            static_cast<double>(c)));
    add_row("general(|A|=64)", core::MakeGeneral(), 64, n, c,
            baselines::GeneralBoundRounds(static_cast<double>(n),
                                          static_cast<double>(c)));
  }
  table.Print(std::cout);
  std::cout << "\nbounded max/bound ratios across quantiles = the w.h.p. "
               "guarantee; no trial ever hit the round limit.\n";

  // Distribution shape for one representative point: geometric tails.
  {
    harness::TrialSpec spec;
    spec.population = std::int64_t{1} << 16;
    spec.num_active = 64;
    spec.channels = 256;
    spec.stop_when_solved = false;
    const harness::TrialSetResult r =
        harness::RunTrials(spec, core::MakeGeneral(), 8000, true);
    std::vector<std::int64_t> rounds;
    for (const auto& run : r.runs) rounds.push_back(run.rounds_executed);
    std::cout << "\ncompletion-round distribution, general |A|=64, "
                 "n=2^16, C=256 (8000 runs):\n"
              << harness::AsciiHistogram(rounds, 16);
  }
  return 0;
}
