// E6 (Figure 4): per-phase SplitSearch cost inside LeafElection.
//
// Lemma 16: in phase i (cohort size 2^(i-1)) the (p+1)-ary search finishes
// in O(log h / i) refinements of 5 rounds each; Corollary 15: O(log x)
// phases. We instrument the eventual winner (it participates in every
// phase) and print measured refinements next to the Snir prediction
// ceil(log2(h+1) / log2(cohort+1)).
#include <cmath>
#include <iostream>
#include <vector>

#include "core/leaf_election.h"
#include "sim/engine.h"
#include "harness/table.h"
#include "support/rng.h"

int main() {
  using namespace crmc;

  std::cout << "# E6 / Figure 4 — SplitSearch refinements per phase\n\n";

  for (const std::int32_t num_leaves : {512, 4096}) {
    for (const std::int32_t occupancy : {64, 512}) {
      if (occupancy > num_leaves) continue;
      const std::int32_t h = 31 - __builtin_clz(
          static_cast<unsigned>(num_leaves));
      std::cout << "## tree leaves L = " << num_leaves << " (h = " << h
                << "), occupied x = " << occupancy << "\n\n";

      // Average the winner's per-phase stats over several random leaf sets.
      constexpr int kTrials = 25;
      std::vector<double> recursions_sum;
      std::vector<double> rounds_sum;
      std::vector<std::int64_t> csize_ref;
      int counted = 0;
      support::RandomSource rng(num_leaves * 131 + occupancy);
      for (int trial = 0; trial < kTrials; ++trial) {
        const auto sample = support::SampleWithoutReplacement(
            num_leaves, occupancy, rng);
        std::vector<std::int32_t> leaves(sample.begin(), sample.end());
        sim::EngineConfig config;
        config.num_active = occupancy;
        config.population = num_leaves;
        config.channels = 2 * num_leaves - 1;
        config.seed = static_cast<std::uint64_t>(trial) + 1;
        config.stop_when_solved = false;
        core::LeafElectionParams params;
        params.record_phase_stats = true;
        const sim::RunResult r = sim::Engine::Run(
            config,
            core::MakeLeafElectionOnly(leaves, num_leaves, params));
        for (const auto& report : r.node_reports) {
          if (!report.phase_marks.count("le_leader")) continue;
          std::vector<std::int64_t> csize, recs, rounds;
          for (const auto& [key, value] : report.metrics) {
            if (key == "le_csize") csize.push_back(value);
            if (key == "le_recursions") recs.push_back(value);
            if (key == "le_rounds") rounds.push_back(value);
          }
          if (recursions_sum.size() < csize.size()) {
            recursions_sum.resize(csize.size(), 0.0);
            rounds_sum.resize(csize.size(), 0.0);
            csize_ref.resize(csize.size(), 0);
          }
          for (std::size_t i = 0; i < csize.size(); ++i) {
            recursions_sum[i] += static_cast<double>(recs[i]);
            rounds_sum[i] += static_cast<double>(rounds[i]);
            csize_ref[i] = csize[i];
          }
          ++counted;
        }
      }

      harness::Table table({"phase", "cohort size", "refinements (mean)",
                            "snir prediction", "rounds (mean)"});
      for (std::size_t i = 0; i < csize_ref.size(); ++i) {
        const double predicted = std::ceil(
            std::log2(static_cast<double>(h) + 1.0) /
            std::log2(static_cast<double>(csize_ref[i]) + 1.0));
        table.Row().Cells(static_cast<std::int64_t>(i + 1), csize_ref[i],
                          recursions_sum[i] / counted, predicted,
                          rounds_sum[i] / counted);
      }
      table.Print(std::cout);
      std::cout << "\n";
    }
  }
  std::cout << "refinements per phase fall as ~log(h)/log(cohort+1): the "
               "coalescing-cohorts speedup of Section 5.3.\n";
  return 0;
}
