// Visualize a contention-resolution execution round by round.
//
//   ./trace_viewer [algorithm] [num_active] [population] [channels] [seed]
//
// Runs the chosen algorithm with tracing enabled and renders the classic
// rounds-x-channels activity diagram, e.g. for the TwoActive algorithm you
// can watch the random renaming collide, the SplitCheck probes walk the
// tree levels, and the winner claim channel 1.
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/registry.h"
#include "sim/engine.h"
#include "sim/trace.h"

int main(int argc, char** argv) {
  using namespace crmc;

  const std::string algo = argc > 1 ? argv[1] : "two_active";
  const harness::AlgorithmInfo& info = harness::AlgorithmByName(algo);

  sim::EngineConfig config;
  config.num_active =
      argc > 2 ? std::atoi(argv[2]) : (info.requires_two_active ? 2 : 12);
  config.population = argc > 3 ? std::atoll(argv[3]) : 1 << 16;
  config.channels = argc > 4 ? std::atoi(argv[4]) : 32;
  config.seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 11;
  config.record_trace = true;
  config.stop_when_solved = false;
  config.max_rounds = 100000;

  std::cout << "algorithm: " << info.name << " — " << info.description
            << "\n|A| = " << config.num_active << ", n = "
            << config.population << ", C = " << config.channels
            << ", seed = " << config.seed << "\n\n";

  const sim::RunResult r = sim::Engine::Run(config, info.make());

  sim::RenderTrace(r.trace, std::min<mac::ChannelId>(config.channels, 80),
                   60, std::cout);
  std::cout << "\n";
  if (r.solved) {
    std::cout << "solved in round " << r.solved_round + 1 << "; protocol "
              << (r.all_terminated ? "terminated" : "still running")
              << " after " << r.rounds_executed << " rounds, "
              << r.total_transmissions << " transmissions (max "
              << r.max_node_transmissions << " per node)\n";
  } else {
    std::cout << "not solved within " << r.rounds_executed << " rounds\n";
  }
  return 0;
}
