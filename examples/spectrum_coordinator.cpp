// Scenario: cognitive-radio coordinator election.
//
// A shared-spectrum deployment (the motivating setting of Daum et al. 2012
// and this paper): up to n = 2^20 radios might be present in a band with C
// usable narrowband channels; an unknown subset powers on simultaneously
// after an interference event and must elect a coordinator — i.e., get one
// radio to transmit alone on the control channel (channel 1).
//
// The example sweeps fleet sizes and channel counts, reporting how many
// rounds (slots) the paper's algorithm needs until the control channel is
// won, and how that compares to the single-channel optimum a conventional
// design would use.
#include <iostream>
#include <vector>

#include "core/general.h"
#include "core/reduce.h"
#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace crmc;

  constexpr std::int64_t kPopulation = 1 << 20;
  // Trial counts scale down with fleet size to keep the demo snappy.
  auto trials_for = [](std::int32_t awake) {
    return awake >= 100000 ? 25 : awake >= 1000 ? 120 : 200;
  };

  std::cout << "Cognitive-radio coordinator election\n"
            << "  up to " << kPopulation
            << " radios, slots until the control channel is won\n"
            << "  (mean / p95 per fleet size)\n\n";

  harness::Table table({"radios awake", "channels", "multi-channel CD:  mean",
                        "p95", "single-channel CD: mean", "p95"});

  for (const std::int32_t awake : {10, 1000, 100000}) {
    const int trials = trials_for(awake);
    // The single-channel baseline does not depend on the channel count.
    harness::TrialSpec single;
    single.population = kPopulation;
    single.num_active = awake;
    single.channels = 1;
    const harness::TrialSetResult knockout =
        harness::RunTrials(single, core::MakeKnockoutCd(), trials);

    for (const std::int32_t channels : {16, 256, 2048}) {
      harness::TrialSpec spec = single;
      spec.channels = channels;
      const harness::TrialSetResult multi =
          harness::RunTrials(spec, core::MakeGeneral(), trials);
      table.Row()
          .Cells(awake, channels, multi.summary.mean, multi.summary.p95,
                 knockout.summary.mean, knockout.summary.p95);
    }
  }
  table.Print(std::cout);

  std::cout << "\nNote: means are dominated by lucky early wins on the "
               "control channel;\nthe paper's advantage is the guaranteed "
               "(w.h.p.) tail — see bench_whp_tails.\n";
  return 0;
}
