// Scenario: draining a burst of packets (k-selection).
//
// The ALOHA lineage of this problem (Section 2 of the paper) is about
// delivering queued packets over a shared medium. Here a burst of k
// stations each hold one packet; the fleet repeatedly runs the paper's
// general algorithm in fixed-length instances, delivering one packet per
// instance on the primary channel.
//
//   ./packet_drain [packets] [population] [channels] [seed]
#include <cstdlib>
#include <iostream>

#include "core/k_selection.h"
#include "sim/engine.h"

int main(int argc, char** argv) {
  using namespace crmc;

  sim::EngineConfig config;
  config.num_active = argc > 1 ? std::atoi(argv[1]) : 16;
  config.population = argc > 2 ? std::atoll(argv[2]) : 1 << 16;
  config.channels = argc > 3 ? std::atoi(argv[3]) : 64;
  config.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 5;
  config.stop_when_solved = false;
  config.max_rounds = 8'000'000;

  const std::int64_t instance_rounds = core::DefaultInstanceRounds(
      config.population, config.channels);
  std::cout << "Draining " << config.num_active << " packets (n = "
            << config.population << ", C = " << config.channels
            << "); instance budget " << instance_rounds << " rounds\n\n";

  const sim::RunResult r =
      sim::Engine::Run(config, core::MakeKSelection());

  if (!r.all_terminated) {
    std::cout << "queue did not drain — unexpected\n";
    return 1;
  }
  std::cout << "all " << config.num_active << " packets delivered in "
            << r.rounds_executed << " rounds ("
            << r.rounds_executed / config.num_active
            << " rounds/packet incl. padding)\n";
  std::cout << "the engine observed " << r.all_solved_rounds.size()
            << " lone primary-channel transmissions (>= 1 per packet; "
               "extras are elections solving mid-instance)\n\n";

  std::cout << "delivery schedule (node -> instance):\n";
  for (const auto& report : r.node_reports) {
    for (const auto& [key, value] : report.metrics) {
      if (key == "delivered_instance") {
        std::cout << "  node " << report.index << " -> instance " << value
                  << "\n";
      }
    }
  }
  return 0;
}
