// Quickstart: solve contention resolution once and inspect the run.
//
// Builds an engine configuration (n possible nodes, |A| activated, C
// channels), runs the paper's general algorithm, and prints what happened.
//
//   ./quickstart [num_active] [population] [channels] [seed]
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "baselines/baselines.h"
#include "core/general.h"
#include "sim/engine.h"

int main(int argc, char** argv) {
  using namespace crmc;

  sim::EngineConfig config;
  config.num_active = argc > 1 ? std::atoi(argv[1]) : 1000;
  config.population = argc > 2 ? std::atoll(argv[2]) : 1 << 20;
  config.channels = argc > 3 ? std::atoi(argv[3]) : 128;
  config.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;
  config.stop_when_solved = false;  // watch the protocol run to completion

  std::cout << "Contention resolution with collision detection on "
            << config.channels << " channels\n"
            << "  population n = " << config.population << ", activated |A| = "
            << config.num_active << ", seed = " << config.seed << "\n\n";

  const sim::RunResult result = sim::Engine::Run(config, core::MakeGeneral());

  if (result.solved) {
    std::cout << "SOLVED in round " << result.solved_round + 1
              << " (first lone transmission on the primary channel)\n";
  } else {
    std::cout << "not solved (this should never happen)\n";
  }
  std::cout << "protocol fully terminated after " << result.rounds_executed
            << " rounds, " << result.total_transmissions
            << " total transmissions\n\n";

  const std::int64_t reduce = result.LastPhaseMark("reduce_done");
  const std::int64_t rename = result.LastPhaseMark("rename_done");
  const std::int64_t elect = result.LastPhaseMark("elect_done");
  // Phase marks record the round index after each step completes, i.e.
  // the rounds consumed so far.
  std::cout << "step boundaries (rounds consumed):\n";
  std::cout << "  Reduce       -> " << reduce << "\n";
  if (rename >= 0) {
    std::cout << "  IDReduction  -> " << rename << "\n";
  } else {
    std::cout << "  IDReduction  -> (not needed: Reduce already elected a "
                 "leader)\n";
  }
  if (elect >= 0) {
    std::cout << "  LeafElection -> " << elect << "\n";
  } else if (rename >= 0) {
    std::cout << "  LeafElection -> (not needed: a lone node renamed and "
                 "solved the problem)\n";
  }

  const double bound = baselines::GeneralBoundRounds(
      static_cast<double>(config.population),
      static_cast<double>(config.channels));
  const double lower = baselines::LowerBoundRounds(
      static_cast<double>(config.population),
      static_cast<double>(config.channels));
  std::cout << "\nreference (constant-free): lower bound ~ " << lower
            << " rounds, Theorem 4 upper bound ~ " << bound << " rounds\n";
  return result.solved ? 0 : 1;
}
