// Scenario: wireless sensor field with non-simultaneous wakeup.
//
// Sensors scattered in the field boot at slightly different times after a
// power event (Section 3's harder model). Each runs the wakeup transform
// around the paper's general algorithm: two listening rounds on the primary
// channel, then — if nothing is heard — start the protocol with beacons
// interleaved on the primary channel so later wakers stand down.
//
//   ./sensor_wakeup [sensors] [max_delay] [channels] [seed]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/general.h"
#include "core/wakeup_transform.h"
#include "sim/engine.h"
#include "support/rng.h"

int main(int argc, char** argv) {
  using namespace crmc;

  const std::int32_t sensors = argc > 1 ? std::atoi(argv[1]) : 200;
  const std::int64_t max_delay = argc > 2 ? std::atoll(argv[2]) : 8;
  const std::int32_t channels = argc > 3 ? std::atoi(argv[3]) : 64;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 7;

  support::RandomSource delay_rng(seed ^ 0xd31a7);
  std::vector<std::int64_t> delays(static_cast<std::size_t>(sensors));
  std::int64_t first_wake = max_delay;
  for (auto& d : delays) {
    d = delay_rng.UniformInt(0, max_delay);
    if (d < first_wake) first_wake = d;
  }

  std::cout << sensors << " sensors waking within " << max_delay
            << " rounds of each other, " << channels << " channels\n\n";

  sim::EngineConfig config;
  config.num_active = sensors;
  config.population = 1 << 16;
  config.channels = channels;
  config.seed = seed;
  const sim::RunResult result = sim::Engine::Run(
      config, core::MakeWakeupTransform(delays, core::MakeGeneral()));

  if (!result.solved) {
    std::cout << "not solved — unexpected\n";
    return 1;
  }
  std::cout << "coordinator elected in round " << result.solved_round + 1
            << " (" << result.solved_round + 1 - first_wake
            << " rounds after the first sensor woke)\n";

  // Compare with the simultaneous-start baseline to show the transform's
  // factor-2-plus-constant overhead.
  sim::EngineConfig plain = config;
  const sim::RunResult baseline = sim::Engine::Run(plain, core::MakeGeneral());
  std::cout << "same fleet with simultaneous start: round "
            << baseline.solved_round + 1 << "\n"
            << "transform overhead factor: "
            << (baseline.solved_round >= 0
                    ? static_cast<double>(result.solved_round + 1) /
                          static_cast<double>(baseline.solved_round + 1)
                    : 0.0)
            << " (Section 3 promises <= ~2x plus a constant)\n";
  return 0;
}
