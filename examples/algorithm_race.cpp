// Race every registered contention-resolution algorithm on one instance.
//
//   ./algorithm_race [num_active] [population] [channels] [trials]
//
// Prints mean / p95 / max solved rounds per algorithm, making the model
// assumptions (CD or not, channels used, oracle knowledge) explicit.
#include <cstdlib>
#include <iostream>

#include "harness/registry.h"
#include "harness/runner.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace crmc;

  harness::TrialSpec spec;
  spec.num_active = argc > 1 ? std::atoi(argv[1]) : 500;
  spec.population = argc > 2 ? std::atoll(argv[2]) : 1 << 16;
  spec.channels = argc > 3 ? std::atoi(argv[3]) : 64;
  const int trials = argc > 4 ? std::atoi(argv[4]) : 100;

  std::cout << "Algorithm race: |A| = " << spec.num_active << ", n = "
            << spec.population << ", C = " << spec.channels << ", " << trials
            << " trials\n\n";

  harness::Table table(
      {"algorithm", "mean", "p95", "max", "unsolved", "notes"});
  for (const harness::AlgorithmInfo& info : harness::Algorithms()) {
    if (info.requires_two_active && spec.num_active != 2) {
      table.Row().Cells(info.name, "-", "-", "-", "-",
                        "skipped: specified for |A| = 2 only");
      continue;
    }
    const harness::TrialSetResult result =
        harness::RunTrials(spec, info.make(), trials);
    table.Row().Cells(info.name, result.summary.mean, result.summary.p95,
                      result.summary.max,
                      static_cast<std::int64_t>(result.unsolved),
                      info.oracle ? "oracle: knows |A|" : info.description);
  }
  table.Print(std::cout);
  std::cout << "\nRun with num_active = 2 to include the TwoActive "
               "algorithm, e.g.:  ./algorithm_race 2 1048576 1024 500\n";
  return 0;
}
