// Scenario: which jamming strategy buys more delay per jam?
//
// Two adversaries with identical budgets attack the paper's general
// algorithm: GreedyReactive eavesdrops on the previous round's channel
// activity and aims for channels that just carried a lone transmission,
// while RandomBudgeted sprays the same budget over uniformly random
// channels. The duel makes the resource-competitive question concrete —
// what does reactivity (information) add on top of raw budget?
//
//   ./jammer_duel [budget] [num_active] [channels] [trials]
#include <cstdlib>
#include <iostream>

#include "adversary/adversary.h"
#include "harness/registry.h"
#include "harness/runner.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace crmc;

  const std::int64_t budget = argc > 1 ? std::atoll(argv[1]) : 64;
  harness::TrialSpec spec;
  spec.num_active = argc > 2 ? std::atoi(argv[2]) : 128;
  spec.population = 1 << 14;
  spec.channels = argc > 3 ? std::atoi(argv[3]) : 64;
  spec.max_rounds = 2000;
  const int trials = argc > 4 ? std::atoi(argv[4]) : 200;

  std::cout << "Jammer duel on the general algorithm: |A| = "
            << spec.num_active << ", C = " << spec.channels << ", budget = "
            << budget << " jams (cap 4/round), " << trials << " trials\n\n";

  const harness::AlgorithmInfo& info = harness::AlgorithmByName("general");
  harness::Table table({"adversary", "success", "mean rounds", "spent",
                        "effective", "delay per jam"});
  double pristine_mean = 0.0;
  const adversary::Kind duelists[] = {
      adversary::Kind::kNone,
      adversary::Kind::kGreedyReactive,
      adversary::Kind::kRandomBudgeted,
  };
  for (const adversary::Kind kind : duelists) {
    spec.adversary = adversary::AdversarySpec{};
    spec.adversary.kind = kind;
    if (kind != adversary::Kind::kNone) {
      spec.adversary.budget = budget;
      spec.adversary.per_round_cap = 4;
    }
    const harness::TrialSetResult r =
        harness::RunTrials(spec, harness::HandleFor(info), trials);
    const double mean = r.solved_rounds.empty() ? 0.0 : r.summary.mean;
    if (kind == adversary::Kind::kNone) pristine_mean = mean;
    // Rounds of delay bought per jam actually spent, counting an unsolved
    // trial as the full max_rounds horizon. The pristine row anchors it.
    double delay_per_jam = 0.0;
    if (kind != adversary::Kind::kNone && r.adv_jams_spent > 0) {
      const double solved_delay =
          static_cast<double>(r.solved_rounds.size()) *
          (mean - pristine_mean);
      const double failed_delay =
          static_cast<double>(r.unsolved) *
          (static_cast<double>(spec.max_rounds) - pristine_mean);
      delay_per_jam =
          (solved_delay + failed_delay) / static_cast<double>(r.adv_jams_spent);
    }
    table.Row().Cells(
        kind == adversary::Kind::kNone ? "(pristine)"
                                       : adversary::ToString(kind),
        harness::FormatDouble(
            static_cast<double>(r.solved_rounds.size()) / trials, 3),
        harness::FormatDouble(mean, 1), r.adv_jams_spent,
        r.adv_jams_effective, harness::FormatDouble(delay_per_jam, 1));
  }
  table.Print(std::cout);
  std::cout << "\nGreedyReactive reads last round's busy channels (one round "
               "stale); RandomBudgeted\nsprays blind. Identical budgets — "
               "the gap in 'delay per jam' is the value of\ninformation. "
               "Try a tiny budget (./jammer_duel 4) to see how few jams "
               "break the\ngeneral algorithm's Reduce stage.\n";
  return 0;
}
